// Differential and property tests for plain + loop-lifted staircase join.

#include <gtest/gtest.h>

#include <random>

#include "staircase/loop_lifted.h"
#include "staircase/naive_axes.h"
#include "staircase/staircase.h"
#include "test_util.h"

namespace mxq {
namespace {

constexpr const char* kFig4 =
    "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>";

constexpr Axis kAllAxes[] = {
    Axis::kChild,          Axis::kDescendant,
    Axis::kDescendantOrSelf, Axis::kSelf,
    Axis::kParent,         Axis::kAncestor,
    Axis::kAncestorOrSelf, Axis::kFollowing,
    Axis::kPreceding,      Axis::kFollowingSibling,
    Axis::kPrecedingSibling, Axis::kAttribute,
};

class Fig4Staircase : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = ShredDocument(&mgr_, "fig4.xml", kFig4);
    ASSERT_TRUE(r.ok());
    doc_ = *r;
  }
  // Element pres: a=1 b=2 c=3 d=4 e=5 f=6 g=7 h=8 i=9 j=10.
  DocumentManager mgr_;
  DocumentContainer* doc_ = nullptr;
};

TEST_F(Fig4Staircase, DescendantWithPruning) {
  // Context {c, h} from the paper's Figure 3 (our pres: c=3, h=8).
  ScanStats stats;
  auto res = StaircaseJoin(*doc_, Axis::kDescendant,
                           std::vector<int64_t>{3, 8}, NodeTest::AnyNode(),
                           &stats);
  EXPECT_EQ(res, (std::vector<int64_t>{4, 5, 9, 10}));
  // Skipping: the region between e(5) and h(8) is never scanned.
  EXPECT_LE(stats.slots_touched, stats.results + 2);
}

TEST_F(Fig4Staircase, DescendantPrunesCoveredContexts) {
  // b covers c: c must be pruned, result identical to {b}/descendant.
  ScanStats stats;
  auto res = StaircaseJoin(*doc_, Axis::kDescendant,
                           std::vector<int64_t>{2, 3}, NodeTest::AnyNode(),
                           &stats);
  EXPECT_EQ(res, (std::vector<int64_t>{3, 4, 5}));
  EXPECT_EQ(stats.contexts_pruned, 1);
}

TEST_F(Fig4Staircase, AncestorPartitioning) {
  // Figure 1: (c,e,f,i)/ancestor — our pres c=3, e=5, f=6, i=9.
  auto res = StaircaseJoin(*doc_, Axis::kAncestor,
                           std::vector<int64_t>{3, 5, 6, 9},
                           NodeTest::AnyElem());
  // Ancestors: {a,b} for c; {a,b,c} for e; {a} for f; {a,f,h} for i.
  EXPECT_EQ(res, (std::vector<int64_t>{1, 2, 3, 6, 8}));
}

TEST_F(Fig4Staircase, FollowingPartitioning) {
  // Figure 2: (c,g,i)/following — our pres c=3, g=7, i=9.
  auto res = StaircaseJoin(*doc_, Axis::kFollowing,
                           std::vector<int64_t>{3, 7, 9},
                           NodeTest::AnyElem());
  // following(c) covers everything after e: f,g,h,i,j.
  EXPECT_EQ(res, (std::vector<int64_t>{6, 7, 8, 9, 10}));
}

TEST_F(Fig4Staircase, ChildStep) {
  auto res = StaircaseJoin(*doc_, Axis::kChild, std::vector<int64_t>{1, 8},
                           NodeTest::AnyElem());
  EXPECT_EQ(res, (std::vector<int64_t>{2, 6, 9, 10}));
}

TEST_F(Fig4Staircase, ChildWithNestedContexts) {
  // a and f nested: children must come out in document order.
  auto res = StaircaseJoin(*doc_, Axis::kChild, std::vector<int64_t>{1, 6},
                           NodeTest::AnyElem());
  EXPECT_EQ(res, (std::vector<int64_t>{2, 6, 7, 8}));
}

TEST_F(Fig4Staircase, NameTestDuringScan) {
  StrId h = mgr_.strings().Find("h");
  auto res = StaircaseJoin(*doc_, Axis::kDescendant, std::vector<int64_t>{1},
                           NodeTest::Named(h));
  EXPECT_EQ(res, (std::vector<int64_t>{8}));
}

// ---------------------------------------------------------------------------
// Differential testing against the naive oracle
// ---------------------------------------------------------------------------

struct DiffCase {
  int nodes;
  int ctx_size;
  uint32_t seed;
};

class StaircaseDiffTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(StaircaseDiffTest, AllAxesMatchNaiveOracle) {
  const DiffCase& pc = GetParam();
  DocumentManager mgr;
  DocumentContainer* doc = testutil::RandomDoc(&mgr, pc.nodes, pc.seed);
  auto ctx = testutil::RandomContext(*doc, pc.ctx_size, pc.seed * 31 + 7);
  const NodeTest tests[] = {NodeTest::AnyNode(), NodeTest::AnyElem(),
                            NodeTest::Named(mgr.strings().Find("b")),
                            NodeTest::Text()};
  for (Axis axis : kAllAxes) {
    for (const NodeTest& test : tests) {
      if (axis == Axis::kAttribute &&
          test.sel != NodeTest::Sel::kAnyNode)
        continue;
      auto expect = EvalAxisNaive(*doc, axis, ctx, test);
      auto actual = StaircaseJoin(*doc, axis, ctx, test);
      EXPECT_EQ(actual, expect)
          << AxisName(axis) << " seed=" << pc.seed << " sel="
          << static_cast<int>(test.sel);
    }
  }
}

TEST_P(StaircaseDiffTest, LoopLiftedMatchesPerIterationNaive) {
  const DiffCase& pc = GetParam();
  DocumentManager mgr;
  DocumentContainer* doc = testutil::RandomDoc(&mgr, pc.nodes, pc.seed);
  std::mt19937 rng(pc.seed * 17 + 3);

  // Build a random loop-lifted context: a handful of iterations, each with
  // its own context set; flatten to (pre, iter)-sorted columns.
  int n_iters = 1 + static_cast<int>(rng() % 5);
  std::vector<std::pair<int64_t, int64_t>> pairs;  // (pre, iter)
  std::vector<std::vector<int64_t>> per_iter(n_iters);
  for (int it = 0; it < n_iters; ++it) {
    per_iter[it] =
        testutil::RandomContext(*doc, 1 + rng() % pc.ctx_size, rng());
    for (int64_t p : per_iter[it]) pairs.emplace_back(p, it);
  }
  std::sort(pairs.begin(), pairs.end());
  std::vector<int64_t> ctx_iter, ctx_pre;
  for (auto& [p, it] : pairs) {
    ctx_pre.push_back(p);
    ctx_iter.push_back(it);
  }

  const NodeTest tests[] = {NodeTest::AnyNode(), NodeTest::AnyElem()};
  for (Axis axis : kAllAxes) {
    for (const NodeTest& test : tests) {
      auto ll = LoopLiftedStaircase(*doc, axis, ctx_iter, ctx_pre, test);
      // Oracle: per-iteration naive evaluation.
      std::vector<std::pair<int64_t, int64_t>> expect;  // (node, iter)
      for (int it = 0; it < n_iters; ++it)
        for (int64_t v : EvalAxisNaive(*doc, axis, per_iter[it], test))
          expect.emplace_back(v, it);
      std::sort(expect.begin(), expect.end());
      std::vector<std::pair<int64_t, int64_t>> actual;
      for (size_t k = 0; k < ll.node.size(); ++k)
        actual.emplace_back(ll.node[k], ll.iter[k]);
      // The loop-lifted contract: document order, iteration order within
      // equal nodes — i.e. exactly the sorted pair order.
      EXPECT_EQ(actual, expect)
          << "loop-lifted " << AxisName(axis) << " seed=" << pc.seed;

      // The iterative strategy must agree as well.
      auto iter_res =
          IterativeStaircase(*doc, axis, ctx_iter, ctx_pre, test);
      std::vector<std::pair<int64_t, int64_t>> it_actual;
      for (size_t k = 0; k < iter_res.node.size(); ++k)
        it_actual.emplace_back(iter_res.node[k], iter_res.iter[k]);
      EXPECT_EQ(it_actual, expect)
          << "iterative " << AxisName(axis) << " seed=" << pc.seed;
    }
  }
}

TEST_P(StaircaseDiffTest, CandidatePushdownMatchesPostFilter) {
  const DiffCase& pc = GetParam();
  DocumentManager mgr;
  DocumentContainer* doc = testutil::RandomDoc(&mgr, pc.nodes, pc.seed);
  std::mt19937 rng(pc.seed * 23 + 1);
  int n_iters = 1 + static_cast<int>(rng() % 4);
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int it = 0; it < n_iters; ++it)
    for (int64_t p :
         testutil::RandomContext(*doc, 1 + rng() % pc.ctx_size, rng()))
      pairs.emplace_back(p, it);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::vector<int64_t> ctx_iter, ctx_pre;
  for (auto& [p, it] : pairs) {
    ctx_pre.push_back(p);
    ctx_iter.push_back(it);
  }

  // Candidate list: all elements named "b" (the name index delivers these).
  StrId b = mgr.strings().Find("b");
  const std::vector<int64_t>& cand = doc->ElementsNamed(b);
  if (cand.empty()) GTEST_SKIP();

  for (Axis axis : {Axis::kChild, Axis::kDescendant,
                    Axis::kDescendantOrSelf}) {
    auto pushed = LoopLiftedStaircaseCandidates(*doc, axis, ctx_iter,
                                                ctx_pre, cand);
    auto plain = LoopLiftedStaircase(*doc, axis, ctx_iter, ctx_pre,
                                     NodeTest::Named(b));
    EXPECT_EQ(pushed.node, plain.node) << AxisName(axis);
    EXPECT_EQ(pushed.iter, plain.iter) << AxisName(axis);
  }
}

TEST_P(StaircaseDiffTest, TouchBoundHoldsOnMajorForwardAxes) {
  // Paper §2/§3: staircase join touches at most |result| + |context| slots
  // (node() test; descendant/child/following directly, self trivially).
  const DiffCase& pc = GetParam();
  DocumentManager mgr;
  DocumentContainer* doc = testutil::RandomDoc(&mgr, pc.nodes, pc.seed);
  auto ctx = testutil::RandomContext(*doc, pc.ctx_size, pc.seed + 99);
  for (Axis axis : {Axis::kDescendant, Axis::kChild, Axis::kFollowing,
                    Axis::kSelf}) {
    ScanStats stats;
    auto res = StaircaseJoin(*doc, axis, ctx, NodeTest::AnyNode(), &stats);
    EXPECT_LE(stats.slots_touched,
              static_cast<int64_t>(res.size() + ctx.size()))
        << AxisName(axis);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, StaircaseDiffTest,
    ::testing::Values(DiffCase{20, 3, 1}, DiffCase{20, 8, 2},
                      DiffCase{60, 5, 3}, DiffCase{60, 20, 4},
                      DiffCase{200, 10, 5}, DiffCase{200, 50, 6},
                      DiffCase{500, 25, 7}, DiffCase{500, 100, 8},
                      DiffCase{1000, 40, 9}, DiffCase{50, 50, 10},
                      DiffCase{300, 1, 11}, DiffCase{1000, 200, 12}));

// ---------------------------------------------------------------------------
// Loop-lifted child: the paper's own worked example (§3.1, Figure 7)
// ---------------------------------------------------------------------------

TEST(LoopLiftedChild, Figure7Example) {
  // Two iterations; iter 1 context (c1), iter 2 context (c1, c2) with c2 a
  // descendant of c1. Children of c1 are produced for both iterations, in
  // iteration order per node.
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "f7.xml",
                         "<c1><x/><c2><y/><z/></c2><w/></c1>");
  ASSERT_TRUE(r.ok());
  DocumentContainer* doc = *r;
  // pres: c1=1, x=2, c2=3, y=4, z=5, w=6.
  std::vector<int64_t> ctx_pre = {1, 1, 3};
  std::vector<int64_t> ctx_iter = {1, 2, 2};
  auto res = LoopLiftedStaircase(*doc, Axis::kChild, ctx_iter, ctx_pre,
                                 NodeTest::AnyElem());
  // Children of c1 (x, c2, w) appear for iters 1 and 2; children of c2
  // (y, z) for iter 2 only — document order, iteration order within nodes.
  std::vector<int64_t> want_node = {2, 2, 3, 3, 4, 5, 6, 6};
  std::vector<int64_t> want_iter = {1, 2, 1, 2, 2, 2, 1, 2};
  EXPECT_EQ(res.node, want_node);
  EXPECT_EQ(res.iter, want_iter);
}

TEST(LoopLiftedChild, SingleScanTouchBound) {
  DocumentManager mgr;
  DocumentContainer* doc = testutil::RandomDoc(&mgr, 400, 42);
  // Many iterations sharing the same context node: loop-lifting must not
  // rescan per iteration.
  std::vector<int64_t> ctx_pre, ctx_iter;
  for (int it = 0; it < 50; ++it) {
    ctx_pre.push_back(1);
    ctx_iter.push_back(it);
  }
  ScanStats ll_stats, it_stats;
  auto ll = LoopLiftedStaircase(*doc, Axis::kChild, ctx_iter, ctx_pre,
                                NodeTest::AnyNode(), &ll_stats);
  auto itv = IterativeStaircase(*doc, Axis::kChild, ctx_iter, ctx_pre,
                                NodeTest::AnyNode(), &it_stats);
  EXPECT_EQ(ll.node, itv.node);
  // Iterative touches ~50x the slots the loop-lifted variant does.
  EXPECT_GE(it_stats.slots_touched, 40 * ll_stats.slots_touched);
}

TEST(FragmentRangesTest, TransientContainerFragments) {
  DocumentManager mgr;
  DocumentContainer* c = mgr.CreateContainer("");
  ASSERT_TRUE(ShredFragment(c, "<x><y/></x>").ok());
  ASSERT_TRUE(ShredFragment(c, "<z/>").ok());
  auto frags = FragmentRanges(*c);
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0], (std::pair<int64_t, int64_t>{0, 1}));
  EXPECT_EQ(frags[1], (std::pair<int64_t, int64_t>{2, 2}));
  // following never crosses fragments.
  auto res = StaircaseJoin(*c, Axis::kFollowing, std::vector<int64_t>{0},
                           NodeTest::AnyNode());
  EXPECT_TRUE(res.empty());
}

}  // namespace
}  // namespace mxq
