// Control snippet (tests/static_analysis_test.cmake).
// Expected: COMPILES on every compiler — correct use of the annotated
// wrappers and a consumed Status. Guards the harness itself: if this
// fails, the flags or headers are broken, not the discipline.
#include "common/status.h"
#include "common/thread_annotations.h"

struct Counter {
  mutable mxq::Mutex mu;
  int n MXQ_GUARDED_BY(mu) = 0;

  void Bump() MXQ_EXCLUDES(mu) {
    mxq::MutexLock lk(&mu);
    ++n;
  }
  int get() const MXQ_EXCLUDES(mu) {
    mxq::MutexLock lk(&mu);
    return n;
  }
};

mxq::Status DoWork() { return mxq::Status::OK(); }

int main() {
  Counter c;
  c.Bump();
  mxq::Status st = DoWork();
  if (!st.ok()) return 1;
  return c.get() == 1 ? 0 : 1;
}
