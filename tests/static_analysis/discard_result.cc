// Negative-compilation snippet (tests/static_analysis_test.cmake).
// Expected: FAILS on every compiler under -Werror=unused-result — Result<T>
// is [[nodiscard]] (src/common/status.h) and the call drops it, losing
// both the value and the error.
#include "common/status.h"

mxq::Result<int> Parse() { return 7; }

int main() {
  Parse();  // violation: discarded Result
  return 0;
}
