// Negative-compilation snippet (tests/static_analysis_test.cmake).
// Expected: FAILS on every compiler under -Werror=unused-result — Status
// is [[nodiscard]] (src/common/status.h) and the call drops it.
#include "common/status.h"

mxq::Status DoWork() { return mxq::Status::OK(); }

int main() {
  DoWork();  // violation: discarded Status
  return 0;
}
