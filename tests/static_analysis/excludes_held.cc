// Negative-compilation snippet (tests/static_analysis_test.cmake).
// Expected: FAILS under Clang (-Werror=thread-safety) — calling an
// MXQ_EXCLUDES(mu) function while mu is held (self-deadlock on a
// non-recursive mutex). Compiles cleanly under compilers without the
// analysis.
#include "common/thread_annotations.h"

struct Counter {
  mxq::Mutex mu;
  int n MXQ_GUARDED_BY(mu) = 0;

  void Bump() MXQ_EXCLUDES(mu) {
    mxq::MutexLock lk(&mu);
    ++n;
  }
  void Outer() {
    mxq::MutexLock lk(&mu);
    Bump();  // violation: Bump excludes mu, which is held here
  }
};

int main() {
  Counter c;
  c.Outer();
  return 0;
}
