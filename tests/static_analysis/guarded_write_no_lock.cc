// Negative-compilation snippet (tests/static_analysis_test.cmake).
// Expected: FAILS under Clang (-Werror=thread-safety) — writing a
// MXQ_GUARDED_BY field without holding its mutex. Compiles cleanly under
// compilers without the analysis (the macros expand to nothing).
#include "common/thread_annotations.h"

struct Counter {
  mxq::Mutex mu;
  int n MXQ_GUARDED_BY(mu) = 0;

  void Bump() { ++n; }  // violation: mu not held
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
