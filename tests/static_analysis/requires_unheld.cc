// Negative-compilation snippet (tests/static_analysis_test.cmake).
// Expected: FAILS under Clang (-Werror=thread-safety) — calling an
// MXQ_REQUIRES(mu) function without holding mu. Compiles cleanly under
// compilers without the analysis.
#include "common/thread_annotations.h"

struct Counter {
  mxq::Mutex mu;
  int n MXQ_GUARDED_BY(mu) = 0;

  void BumpLocked() MXQ_REQUIRES(mu) { ++n; }
  void Bump() { BumpLocked(); }  // violation: mu not held at the call
};

int main() {
  Counter c;
  c.Bump();
  return 0;
}
