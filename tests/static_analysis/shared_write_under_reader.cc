// Negative-compilation snippet (tests/static_analysis_test.cmake).
// Expected: FAILS under Clang (-Werror=thread-safety) — writing a guarded
// field while holding only the *shared* side of its SharedMutex (the
// StringPool/ItemDict fast-path bug this discipline exists to prevent).
// Compiles cleanly under compilers without the analysis.
#include "common/thread_annotations.h"

struct Pool {
  mxq::SharedMutex mu;
  int n MXQ_GUARDED_BY(mu) = 0;

  void Bad() {
    mxq::ReaderLock lk(&mu);
    ++n;  // violation: write requires the exclusive capability
  }
};

int main() {
  Pool p;
  p.Bad();
  return 0;
}
