# Negative-compilation harness (docs/static_analysis.md).
#
# Run as a ctest test (see top-level CMakeLists.txt):
#   cmake -DMXQ_SOURCE_DIR=<repo> -DMXQ_WORK_DIR=<scratch>
#         -DMXQ_CXX_COMPILER=<cxx> -DMXQ_CXX_COMPILER_ID=<id>
#         -P tests/static_analysis_test.cmake
#
# Each snippet in tests/static_analysis/ documents one discipline violation
# (or, for control_ok, its absence) and must fail — or compile — exactly as
# its header comment says:
#   * discard_* snippets drop a [[nodiscard]] Status/Result and must fail
#     on EVERY compiler under -Werror=unused-result.
#   * thread-safety snippets violate MXQ_GUARDED_BY/MXQ_REQUIRES/
#     MXQ_EXCLUDES contracts and must fail under Clang
#     (-Werror=thread-safety) while compiling CLEANLY under compilers
#     without the analysis — proving the macros are true no-ops there.
#   * control_ok must compile everywhere.
# Any mismatch is a FATAL_ERROR with the compiler's diagnostics attached.

if(NOT MXQ_SOURCE_DIR OR NOT MXQ_CXX_COMPILER)
  message(FATAL_ERROR "static_analysis_test: MXQ_SOURCE_DIR and "
                      "MXQ_CXX_COMPILER are required")
endif()

set(snippet_dir "${MXQ_SOURCE_DIR}/tests/static_analysis")
if(MXQ_WORK_DIR)
  file(MAKE_DIRECTORY "${MXQ_WORK_DIR}")
endif()

# Mirrors the MXQ_WERROR_THREAD_SAFETY=ON compile line of the top-level
# CMakeLists: -fsyntax-only keeps the harness link-free and fast.
set(flags -std=c++20 -fsyntax-only "-I${MXQ_SOURCE_DIR}/src"
    -Werror=unused-result)
if(MXQ_CXX_COMPILER_ID MATCHES "Clang")
  list(APPEND flags -Wthread-safety -Werror=thread-safety)
  set(have_tsa TRUE)
else()
  set(have_tsa FALSE)
endif()

set(failures "")

# expect = FAIL or PASS
function(check_snippet name expect)
  execute_process(
      COMMAND "${MXQ_CXX_COMPILER}" ${flags} "${snippet_dir}/${name}.cc"
      RESULT_VARIABLE rc
      OUTPUT_VARIABLE out
      ERROR_VARIABLE err)
  if(expect STREQUAL "FAIL" AND rc EQUAL 0)
    set(failures "${failures}\n  ${name}.cc compiled but must NOT"
        PARENT_SCOPE)
  elseif(expect STREQUAL "PASS" AND NOT rc EQUAL 0)
    set(failures
        "${failures}\n  ${name}.cc failed but must compile:\n${err}"
        PARENT_SCOPE)
  else()
    message(STATUS "static_analysis: ${name}.cc — ${expect} as expected")
  endif()
endfunction()

# Status discipline: binding on every compiler.
foreach(name discard_status discard_result)
  check_snippet(${name} FAIL)
endforeach()

# Thread-safety discipline: binding under Clang, no-op (and therefore
# compiling) elsewhere.
foreach(name guarded_write_no_lock requires_unheld
             shared_write_under_reader excludes_held)
  if(have_tsa)
    check_snippet(${name} FAIL)
  else()
    check_snippet(${name} PASS)
  endif()
endforeach()

check_snippet(control_ok PASS)

if(failures)
  message(FATAL_ERROR "static_analysis snippets out of contract:${failures}")
endif()
message(STATUS "static_analysis: all snippets behave as documented "
        "(thread-safety analysis: ${have_tsa})")
