// Unit tests for the pre|size|level storage layer, shredder and serializer.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "storage/document.h"
#include "storage/table.h"
#include "xml/serializer.h"
#include "xml/shredder.h"

namespace mxq {
namespace {

// The paper's running example (Figure 4).
constexpr const char* kFig4 =
    "<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>";

class Fig4Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto r = ShredDocument(&mgr_, "fig4.xml", kFig4);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    doc_ = *r;
  }
  DocumentManager mgr_;
  DocumentContainer* doc_ = nullptr;
};

TEST_F(Fig4Test, PreSizeLevelMatchesPaperFigure4) {
  // Paper Figure 4 (shifted by one: our pre 0 is the document node).
  // a: pre 0 size 9 level 0 ... j: pre 9 size 0 level 3.
  struct Row {
    const char* tag;
    int64_t size;
    int32_t level;
  };
  const Row expected[] = {{"a", 9, 0}, {"b", 3, 1}, {"c", 2, 2}, {"d", 0, 3},
                          {"e", 0, 3}, {"f", 4, 1}, {"g", 0, 2}, {"h", 2, 2},
                          {"i", 0, 3}, {"j", 0, 3}};
  ASSERT_EQ(doc_->NodeCount(), 11);  // 10 elements + document node
  EXPECT_EQ(doc_->KindAt(0), NodeKind::kDoc);
  EXPECT_EQ(doc_->SizeAt(0), 10);
  for (int i = 0; i < 10; ++i) {
    int64_t pre = i + 1;
    EXPECT_EQ(mgr_.strings().Get(static_cast<StrId>(doc_->RefAt(pre))),
              expected[i].tag);
    EXPECT_EQ(doc_->SizeAt(pre), expected[i].size) << "pre=" << pre;
    EXPECT_EQ(doc_->LevelAt(pre), expected[i].level + 1) << "pre=" << pre;
  }
}

TEST_F(Fig4Test, PostorderRecovery) {
  // post(v) = pre(v) + size(v) - level(v) must rank nodes in postorder.
  // Check: postorder of the element nodes a..j equals 9,3,2,0,1,8,4,7,5,6
  // shifted by the document-node offset.
  std::vector<int64_t> post;
  for (int64_t pre = 1; pre <= 10; ++pre) post.push_back(doc_->PostAt(pre));
  std::vector<int64_t> sorted = post;
  std::sort(sorted.begin(), sorted.end());
  // Postorder ranks are distinct.
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
  // d < e < c < b (children before parents).
  EXPECT_LT(post[3], post[4]);
  EXPECT_LT(post[4], post[2]);
  EXPECT_LT(post[2], post[1]);
  EXPECT_LT(post[1], post[0]);
}

TEST_F(Fig4Test, ParentNavigation) {
  EXPECT_EQ(doc_->ParentOf(1), 0);   // a -> doc node
  EXPECT_EQ(doc_->ParentOf(2), 1);   // b -> a
  EXPECT_EQ(doc_->ParentOf(4), 3);   // d -> c
  EXPECT_EQ(doc_->ParentOf(5), 3);   // e -> c
  EXPECT_EQ(doc_->ParentOf(6), 1);   // f -> a
  EXPECT_EQ(doc_->ParentOf(10), 8);  // j -> h
  EXPECT_EQ(doc_->ParentOf(0), -1);  // doc node has no parent
}

TEST_F(Fig4Test, AncestorContainment) {
  EXPECT_TRUE(doc_->IsAncestor(1, 4));
  EXPECT_TRUE(doc_->IsAncestor(3, 4));
  EXPECT_FALSE(doc_->IsAncestor(4, 3));
  EXPECT_FALSE(doc_->IsAncestor(2, 6));
  EXPECT_FALSE(doc_->IsAncestor(4, 4));  // proper
}

TEST_F(Fig4Test, SerializeRoundTrip) {
  std::string out;
  SerializeNode(*doc_, 0, &out);
  EXPECT_EQ(out, kFig4);
}

TEST(ShredderTest, TextAndAttributes) {
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "t.xml",
                         "<person id=\"person0\"><name>Kasidit "
                         "Treweek</name><age>25</age></person>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  DocumentContainer* d = *r;
  // doc, person, name, text, age, text
  EXPECT_EQ(d->NodeCount(), 6);
  EXPECT_EQ(d->KindAt(1), NodeKind::kElem);
  StrId id_qn = mgr.strings().Find("id");
  ASSERT_NE(id_qn, kInvalidStrId);
  int64_t row = d->AttrOf(1, id_qn);
  ASSERT_GE(row, 0);
  EXPECT_EQ(mgr.strings().Get(d->AttrValue(row)), "person0");
  EXPECT_EQ(d->StringValueOf(1), "Kasidit Treweek25");
  EXPECT_EQ(d->StringValueOf(2), "Kasidit Treweek");
}

TEST(ShredderTest, EntitiesAndCdata) {
  DocumentManager mgr;
  auto r = ShredDocument(
      &mgr, "e.xml",
      "<t a=\"x &amp; y\">1 &lt; 2 &#65;<![CDATA[<raw>]]></t>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  DocumentContainer* d = *r;
  EXPECT_EQ(d->StringValueOf(1), "1 < 2 A<raw>");
  StrId a = mgr.strings().Find("a");
  EXPECT_EQ(mgr.strings().Get(d->AttrValue(d->AttrOf(1, a))), "x & y");
}

TEST(ShredderTest, CommentsAndPIs) {
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "c.xml",
                         "<t><!--note--><?php echo?><x/></t>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  DocumentContainer* d = *r;
  EXPECT_EQ(d->KindAt(2), NodeKind::kComment);
  EXPECT_EQ(d->StringValueOf(2), "note");
  EXPECT_EQ(d->KindAt(3), NodeKind::kPI);
  EXPECT_EQ(mgr.strings().Get(d->PITarget(d->RefAt(3))), "php");
  std::string out;
  SerializeNode(*d, 0, &out);
  EXPECT_EQ(out, "<t><!--note--><?php echo?><x/></t>");
}

TEST(ShredderTest, PrologAndDoctypeSkipped) {
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "p.xml",
                         "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
                         "<!DOCTYPE site SYSTEM \"auction.dtd\">\n"
                         "<site><regions/></site>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->NodeCount(), 3);
}

TEST(ShredderTest, ErrorsAreReported) {
  DocumentManager mgr;
  EXPECT_FALSE(ShredDocument(&mgr, "b1", "<a><b></a>").ok());
  EXPECT_FALSE(ShredDocument(&mgr, "b2", "<a>").ok());
  EXPECT_FALSE(ShredDocument(&mgr, "b3", "<a attr></a>").ok());
  EXPECT_FALSE(ShredDocument(&mgr, "b4", "no markup").ok());
}

TEST(ShredderTest, FragmentsGetDistinctFragIds) {
  DocumentManager mgr;
  DocumentContainer* c = mgr.CreateContainer("");
  auto f1 = ShredFragment(c, "<x><y/></x>");
  auto f2 = ShredFragment(c, "<z/>");
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_NE(c->FragAt(*f1), c->FragAt(*f2));
  EXPECT_EQ(c->FragAt(*f1), c->FragAt(*f1 + 1));  // y in same fragment as x
  EXPECT_EQ(c->LevelAt(*f2), 0);
}

TEST(ShredderTest, MultiRootFragment) {
  DocumentManager mgr;
  DocumentContainer* c = mgr.CreateContainer("");
  auto f = ShredFragment(c, "<x/><y/>");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(c->NodeCount(), 2);
}

TEST(DocumentManagerTest, Registry) {
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "a.xml", "<a/>");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(mgr.GetDocument("a.xml").ok());
  EXPECT_FALSE(mgr.GetDocument("nope.xml").ok());
}

TEST(DocumentManagerTest, AtomizeNode) {
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "a.xml", "<a><b>12</b><c>34</c></a>");
  ASSERT_TRUE(r.ok());
  Item root = Item::Node((*r)->id(), 1);
  Item atom = mgr.AtomizeNode(root);
  EXPECT_EQ(atom.kind, ItemKind::kUntyped);
  EXPECT_EQ(mgr.strings().Get(atom.str_id()), "1234");
}

TEST(CopySubtreeTest, PasteEncoding) {
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "s.xml", kFig4);
  ASSERT_TRUE(r.ok());
  DocumentContainer* src = *r;
  DocumentContainer* dst = mgr.CreateContainer("");
  // Copy subtree rooted at f (pre 6): f,g,h,i,j.
  int64_t root = dst->CopySubtree(*src, 6, 0, dst->next_frag());
  EXPECT_EQ(dst->NodeCount(), 5);
  EXPECT_EQ(dst->SizeAt(root), 4);
  EXPECT_EQ(dst->LevelAt(root), 0);
  std::string out;
  SerializeNode(*dst, root, &out);
  EXPECT_EQ(out, "<f><g/><h><i/><j/></h></f>");
}

TEST(CopySubtreeTest, CopiesAttributes) {
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "s.xml", "<a><b id=\"b1\" x=\"2\"><c/></b></a>");
  ASSERT_TRUE(r.ok());
  DocumentContainer* dst = mgr.CreateContainer("");
  int64_t root = dst->CopySubtree(**r, 2, 0, 0);
  std::string out;
  SerializeNode(*dst, root, &out);
  EXPECT_EQ(out, "<b id=\"b1\" x=\"2\"><c/></b>");
}

TEST(PageMapTest, SwizzleIdentityAndInsert) {
  PageMap pm(3);  // 8-slot pages
  pm.InitIdentity(2);
  EXPECT_EQ(pm.PreToRid(0), 0);
  EXPECT_EQ(pm.PreToRid(13), 13);
  // Insert a physical page logically between the two pages.
  int64_t phys = pm.InsertPage(1);
  EXPECT_EQ(phys, 2);
  // Logical page order is now [0, 2, 1].
  EXPECT_EQ(pm.PreToRid(8), 16 + 0);   // logical page 1 -> physical page 2
  EXPECT_EQ(pm.PreToRid(16), 8);       // logical page 2 -> physical page 1
  EXPECT_EQ(pm.RidToPre(pm.PreToRid(21)), 21);
  EXPECT_EQ(pm.RidToPre(pm.PreToRid(5)), 5);
}

TEST(PagedContainerTest, ConvertToPagedPreservesView) {
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "s.xml", kFig4);
  ASSERT_TRUE(r.ok());
  DocumentContainer* d = *r;
  std::string before;
  SerializeNode(*d, 0, &before);
  d->ConvertToPaged(3);
  EXPECT_TRUE(d->paged());
  EXPECT_EQ(d->NodeCount(), 11);
  EXPECT_EQ(d->LogicalSlots() % 8, 0);
  std::string after;
  SerializeNode(*d, 0, &after);
  EXPECT_EQ(before, after);
  // SkipUnused jumps the padded tail in one step.
  EXPECT_EQ(d->SkipUnused(11), d->LogicalSlots());
}

TEST(TablePropsTest, OrderingQueries) {
  TableProps p;
  p.ord = {"iter", "pos"};
  EXPECT_TRUE(p.OrderedBy({"iter"}));
  EXPECT_TRUE(p.OrderedBy({"iter", "pos"}));
  EXPECT_FALSE(p.OrderedBy({"pos"}));
  EXPECT_TRUE(p.GrpOrderedBy({"pos"}, "iter"));
  EXPECT_FALSE(p.GrpOrderedBy({"item"}, "iter"));
  p.grpord.push_back({{"item"}, "iter"});
  EXPECT_TRUE(p.GrpOrderedBy({"item"}, "iter"));
}

TEST(TablePropsTest, RestrictAndRename) {
  TableProps p;
  p.dense = {"iter"};
  p.key = {"iter", "item"};
  p.ord = {"iter", "pos", "item"};
  p.constants["pos"] = Item::Int(1);
  p.RestrictTo({"iter", "pos"});
  EXPECT_TRUE(p.is_key("iter"));
  EXPECT_FALSE(p.is_key("item"));
  EXPECT_EQ(p.ord.size(), 2u);
  p.RenameCol("iter", "inner");
  EXPECT_TRUE(p.is_dense("inner"));
  EXPECT_EQ(p.ord[0], "inner");
}

TEST(StringPoolTest, InternDedupes) {
  StringPool pool;
  StrId a = pool.Intern("hello");
  StrId b = pool.Intern("world");
  StrId c = pool.Intern("hello");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Get(a), "hello");
  EXPECT_EQ(pool.Find("world"), b);
  EXPECT_EQ(pool.Find("missing"), kInvalidStrId);
}

TEST(WatermarkTest, TruncateToRollsBackEveryTable) {
  DocumentManager mgr;
  auto doc = ShredDocument(&mgr, "w.xml",
                           "<r a=\"1\"><c>t</c><?pi v?><!--x--></r>");
  ASSERT_TRUE(doc.ok());
  DocumentContainer* c = *doc;
  const auto mark = c->Mark();
  const int64_t slots = c->PhysicalSlots();
  const int64_t attrs = c->AttrCount();
  const int64_t pis = c->PICount();
  const int64_t nodes = c->NodeCount();

  // Grow every append-only table past the watermark, then roll back.
  ASSERT_TRUE(ShredFragment(c, "<extra b=\"2\">y<?p q?></extra>").ok());
  ASSERT_GT(c->PhysicalSlots(), slots);
  ASSERT_GT(c->AttrCount(), attrs);
  ASSERT_GT(c->PICount(), pis);
  c->TruncateTo(mark);
  EXPECT_EQ(c->PhysicalSlots(), slots);
  EXPECT_EQ(c->AttrCount(), attrs);
  EXPECT_EQ(c->PICount(), pis);
  EXPECT_EQ(c->NodeCount(), nodes);
  EXPECT_EQ(c->next_frag(), mark.next_frag);
  EXPECT_TRUE(c->CheckInvariants().ok());

  // Truncating to the current state is a no-op.
  c->TruncateTo(c->Mark());
  EXPECT_EQ(c->PhysicalSlots(), slots);

  // The rolled-back container still grows correctly afterwards.
  ASSERT_TRUE(ShredFragment(c, "<again/>").ok());
  EXPECT_TRUE(c->CheckInvariants().ok());
}

TEST(CheckInvariantsTest, AcceptsWellFormedContainers) {
  DocumentManager mgr;
  auto doc = ShredDocument(
      &mgr, "ok.xml",
      "<site a=\"1\"><p id=\"x\">text<![CDATA[raw]]></p><?pi v?><!--c--></site>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE((*doc)->CheckInvariants().ok());
  ASSERT_TRUE(ShredFragment(*doc, "<more><deep><deeper/></deep></more>").ok());
  EXPECT_TRUE((*doc)->CheckInvariants().ok());
}

TEST(CheckInvariantsTest, RejectsCorruptedColumns) {
  DocumentManager mgr;

  // Size extending past the end of the container.
  auto d1 = ShredDocument(&mgr, "c1.xml", "<r><a/><b/></r>");
  ASSERT_TRUE(d1.ok());
  (*d1)->SetSize(0, (*d1)->PhysicalSlots() + 10);
  EXPECT_FALSE((*d1)->CheckInvariants().ok());

  // Negative size.
  auto d2 = ShredDocument(&mgr, "c2.xml", "<r><a/></r>");
  ASSERT_TRUE(d2.ok());
  (*d2)->SetSize(1, -3);
  EXPECT_FALSE((*d2)->CheckInvariants().ok());

  // Level jump deeper than parent+1 (impossible nesting).
  auto d3 = ShredDocument(&mgr, "c3.xml", "<r><a/></r>");
  ASSERT_TRUE(d3.ok());
  (*d3)->SetLevel((*d3)->PhysicalSlots() - 1, 9);
  EXPECT_FALSE((*d3)->CheckInvariants().ok());
}

TEST(DocumentManagerTest, ConcurrentRegistryReadsDuringCreation) {
  // Readers resolve container(id) lock-free while a writer keeps creating
  // containers: every id below the published count must resolve to a
  // non-null container whose columns are readable. Run under
  // MXQ_SANITIZE=thread to prove the publication protocol.
  DocumentManager mgr;
  constexpr int kDocs = 200;
  std::atomic<bool> done{false};
  std::atomic<int> wrong{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const int32_t n = mgr.num_containers();
        for (int32_t id = 0; id < n; ++id) {
          const DocumentContainer* c = mgr.container(id);
          if (c == nullptr || c->id() != id) ++wrong;
        }
      }
    });
  }

  for (int i = 0; i < kDocs; ++i) {
    auto r = ShredDocument(&mgr, "doc" + std::to_string(i) + ".xml",
                           "<d n=\"" + std::to_string(i) + "\"><v/></d>");
    ASSERT_TRUE(r.ok());
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_GE(mgr.num_containers(), kDocs);
  for (int i = 0; i < kDocs; i += 37)
    EXPECT_TRUE(mgr.GetDocument("doc" + std::to_string(i) + ".xml").ok());
}

TEST(ItemTest, PackingPreservesDocumentOrder) {
  Item n1 = Item::Node(0, 5);
  Item n2 = Item::Node(0, 9);
  Item n3 = Item::Node(1, 0);
  EXPECT_LT(n1.node_order_key(), n2.node_order_key());
  EXPECT_LT(n2.node_order_key(), n3.node_order_key());
  EXPECT_EQ(n1.node().pre, 5);
  EXPECT_EQ(n3.node().container, 1);
  EXPECT_EQ(Item::Node(3, 123456789).node().pre, 123456789);
}

}  // namespace
}  // namespace mxq
