// Shared test helpers: deterministic random XML documents and context sets.

#ifndef MXQ_TESTS_TEST_UTIL_H_
#define MXQ_TESTS_TEST_UTIL_H_

#include <random>
#include <string>
#include <vector>

#include "storage/document.h"
#include "xml/shredder.h"

namespace mxq {
namespace testutil {

/// Generates a random XML document with ~`target_nodes` nodes drawn from a
/// small tag alphabet, with text nodes and attributes sprinkled in.
inline std::string RandomXml(int target_nodes, uint32_t seed) {
  std::mt19937 rng(seed);
  const char* tags[] = {"a", "b", "c", "d", "e"};
  std::uniform_int_distribution<int> tag_dist(0, 4);
  std::uniform_int_distribution<int> children_dist(0, 4);
  std::uniform_int_distribution<int> pct(0, 99);
  std::string out;
  int budget = target_nodes;

  // Depth-first construction with a child-count budget.
  std::function<void(int)> gen = [&](int depth) {
    const char* tag = tags[tag_dist(rng)];
    out += "<";
    out += tag;
    if (pct(rng) < 30) out += " id=\"n" + std::to_string(budget) + "\"";
    --budget;
    int kids = depth > 8 ? 0 : children_dist(rng);
    if (kids == 0 || budget <= 0) {
      if (pct(rng) < 30) {
        out += ">t";
        out += std::to_string(pct(rng));
        out += "</";
        out += tag;
        out += ">";
      } else {
        out += "/>";
      }
      return;
    }
    out += ">";
    for (int k = 0; k < kids && budget > 0; ++k) gen(depth + 1);
    out += "</";
    out += tag;
    out += ">";
  };
  out += "<root>";
  --budget;
  while (budget > 0) gen(1);
  out += "</root>";
  return out;
}

/// Shreds a random document, aborting the test on parse failure.
inline DocumentContainer* RandomDoc(DocumentManager* mgr, int target_nodes,
                                    uint32_t seed) {
  auto r = ShredDocument(mgr, "rand" + std::to_string(seed),
                         RandomXml(target_nodes, seed));
  assert(r.ok());
  return *r;
}

/// Random sorted duplicate-free context set over the real nodes of `doc`.
inline std::vector<int64_t> RandomContext(const DocumentContainer& doc,
                                          int count, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<int64_t> all;
  int64_t n = doc.LogicalSlots();
  for (int64_t p = 0; p < n; ++p)
    if (!doc.IsUnused(p)) all.push_back(p);
  std::shuffle(all.begin(), all.end(), rng);
  all.resize(std::min<size_t>(count, all.size()));
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace testutil
}  // namespace mxq

#endif  // MXQ_TESTS_TEST_UTIL_H_
