// Tests for the §5.2 update scheme: paged repacking, structural inserts and
// deletes with page-wise cost, size-delta logging, and a randomized
// differential test against a rebuilt-from-scratch reference document.

#include <gtest/gtest.h>

#include <random>

#include "staircase/naive_axes.h"
#include "staircase/staircase.h"
#include "updates/update_engine.h"
#include "updates/xquery_updates.h"
#include "xml/serializer.h"
#include "xml/shredder.h"

namespace mxq {
namespace updates {
namespace {

std::string Serialize(DocumentContainer* d) {
  std::string out;
  SerializeNode(*d, 0, &out);
  return out;
}

/// Structural invariants of a (possibly paged) container.
void CheckInvariants(const DocumentContainer& d) {
  int64_t n = d.LogicalSlots();
  // Containment: for every real node, the range (pre, pre+size] holds all
  // and only its descendants; levels are consistent.
  for (int64_t p = 0; p < n; ++p) {
    if (d.IsUnused(p)) continue;
    int64_t end = p + d.SizeAt(p);
    ASSERT_LE(end, n) << "range overflow at " << p;
    for (int64_t q = p + 1; q <= end; ++q) {
      if (d.IsUnused(q)) continue;
      ASSERT_GT(d.LevelAt(q), d.LevelAt(p))
          << "descendant level must exceed ancestor's: " << q << " in " << p;
      ASSERT_LE(q + d.SizeAt(q), end) << "child range escapes parent at " << q;
    }
  }
  // Unused runs: the run length field never points past the view.
  // And the maintained real-node count matches a full scan.
  int64_t real = 0;
  for (int64_t p = 0; p < n; ++p) {
    if (d.IsUnused(p)) {
      ASSERT_LE(p + d.SizeAt(p), n);
    } else {
      ++real;
    }
  }
  ASSERT_EQ(real, d.NodeCount()) << "node_count bookkeeping drifted";
}

class UpdatesTest : public ::testing::Test {
 protected:
  DocumentContainer* Shred(const std::string& xml) {
    auto r = ShredDocument(&mgr_, "doc" + std::to_string(++id_), xml);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }
  DocumentManager mgr_;
  int id_ = 0;
};

TEST_F(UpdatesTest, RepackPreservesDocument) {
  const char* xml = "<a><b><c>x</c><d/></b><e f=\"1\">y</e></a>";
  DocumentContainer* d = Shred(xml);
  std::string before = Serialize(d);
  UpdateEngine::RepackPaged(d, /*page_bits=*/3, /*fill_pct=*/75);
  EXPECT_TRUE(d->paged());
  EXPECT_EQ(Serialize(d), before);
  CheckInvariants(*d);
  // Every page has free space at its tail.
  EXPECT_GT(d->LogicalSlots(), d->NodeCount());
}

TEST_F(UpdatesTest, ValueUpdates) {
  DocumentContainer* d = Shred("<a><b id=\"b1\">old</b></a>");
  UpdateEngine eng(d);
  // Text node follows b; find it.
  int64_t text = -1;
  for (int64_t p = 0; p < d->LogicalSlots(); ++p)
    if (!d->IsUnused(p) && d->KindAt(p) == NodeKind::kText) text = p;
  ASSERT_GE(text, 0);
  ASSERT_TRUE(eng.ReplaceText(text, "new").ok());
  EXPECT_EQ(Serialize(d), "<a><b id=\"b1\">new</b></a>");

  int64_t b = d->ElementsNamed(mgr_.strings().Find("b"))[0];
  ASSERT_TRUE(eng.SetAttribute(b, "id", "b2").ok());
  ASSERT_TRUE(eng.SetAttribute(b, "extra", "v").ok());
  EXPECT_EQ(Serialize(d), "<a><b id=\"b2\" extra=\"v\">new</b></a>");
  ASSERT_TRUE(eng.RenameElement(b, "bb").ok());
  EXPECT_EQ(Serialize(d), "<a><bb id=\"b2\" extra=\"v\">new</bb></a>");
  // Errors.
  EXPECT_FALSE(eng.ReplaceText(b, "x").ok());
  EXPECT_FALSE(eng.RenameElement(text, "t").ok());
}

TEST_F(UpdatesTest, InsertFitsInPageFreeSpace) {
  DocumentContainer* d = Shred("<a><b/><c/></a>");
  UpdateEngine eng(d, /*page_bits=*/4, /*fill_pct=*/50);
  eng.ResetStats();
  int64_t a = d->SkipUnused(1);  // element a... (pre 1)
  auto r = eng.InsertXml(a, InsertPos::kLast, "<z><q/></z>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Serialize(d), "<a><b/><c/><z><q/></z></a>");
  CheckInvariants(*d);
  // Fit in free space: exactly one page written, nothing appended.
  EXPECT_EQ(eng.stats().pages_appended, 0);
  EXPECT_EQ(eng.stats().pages_touched, 1);
}

TEST_F(UpdatesTest, InsertFirstAndSiblings) {
  DocumentContainer* d = Shred("<a><b/><c/></a>");
  UpdateEngine eng(d, 4, 50);
  int64_t a = 1;
  ASSERT_TRUE(eng.InsertXml(a, InsertPos::kFirst, "<x/>").ok());
  EXPECT_EQ(Serialize(d), "<a><x/><b/><c/></a>");
  // Find c and insert before / after it.
  StrId c_qn = mgr_.strings().Find("c");
  int64_t c = d->ElementsNamed(c_qn)[0];
  ASSERT_TRUE(eng.InsertXml(c, InsertPos::kBefore, "<y/>").ok());
  StrId b_qn = mgr_.strings().Find("b");
  int64_t b = d->ElementsNamed(b_qn)[0];
  ASSERT_TRUE(eng.InsertXml(b, InsertPos::kAfter, "<w/>").ok());
  EXPECT_EQ(Serialize(d), "<a><x/><b/><w/><y/><c/></a>");
  CheckInvariants(*d);
}

TEST_F(UpdatesTest, LargeInsertSplicesNewPages) {
  DocumentContainer* d = Shred("<a><b/><tail1/><tail2/></a>");
  UpdateEngine eng(d, /*page_bits=*/3, /*fill_pct=*/100);
  eng.ResetStats();
  // 8-slot pages, full: a 6-node insert cannot fit.
  StrId b_qn = mgr_.strings().Find("b");
  int64_t b = d->ElementsNamed(b_qn)[0];
  auto r = eng.InsertXml(b, InsertPos::kAfter,
                         "<big><n1/><n2/><n3/><n4/><n5/></big>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Serialize(d),
            "<a><b/><big><n1/><n2/><n3/><n4/><n5/></big>"
            "<tail1/><tail2/></a>");
  CheckInvariants(*d);
  EXPECT_GT(eng.stats().pages_appended, 0);
  // The paper's point: cost is page-granular, not O(document).
  EXPECT_LE(eng.stats().pages_touched, eng.stats().pages_appended + 1);
}

TEST_F(UpdatesTest, DeleteLeavesUnusedSlots) {
  DocumentContainer* d = Shred("<a><b><x/><y/></b><c/></a>");
  UpdateEngine eng(d, 4, 75);
  StrId b_qn = mgr_.strings().Find("b");
  int64_t b = d->ElementsNamed(b_qn)[0];
  int64_t slots_before = d->LogicalSlots();
  ASSERT_TRUE(eng.DeleteSubtree(b).ok());
  EXPECT_EQ(Serialize(d), "<a><c/></a>");
  CheckInvariants(*d);
  // No shifting at all: the view size is unchanged.
  EXPECT_EQ(d->LogicalSlots(), slots_before);
  // Deleting the root is refused.
  EXPECT_FALSE(eng.DeleteSubtree(0).ok());
}

TEST_F(UpdatesTest, StaircaseJoinWorksOnUpdatedDocument) {
  DocumentContainer* d = Shred("<a><b/><c><d/></c></a>");
  UpdateEngine eng(d, 3, 60);
  StrId c_qn = mgr_.strings().Find("c");
  ASSERT_TRUE(
      eng.InsertXml(d->ElementsNamed(c_qn)[0], InsertPos::kLast, "<e/>").ok());
  // descendants of the root element via staircase == naive.
  std::vector<int64_t> ctx = {d->SkipUnused(0)};
  // Context = the document node; descendants = every element.
  auto scj = StaircaseJoin(*d, Axis::kDescendant, ctx, NodeTest::AnyElem());
  auto naive = EvalAxisNaive(*d, Axis::kDescendant, ctx, NodeTest::AnyElem());
  EXPECT_EQ(scj, naive);
  EXPECT_EQ(scj.size(), 5u);  // a b c d e
}

TEST_F(UpdatesTest, SizeDeltasCommute) {
  // The §5.2 locking argument: size deltas from different transactions can
  // be applied in any order.
  DocumentContainer* d1 = Shred("<a><b/><c/></a>");
  DocumentContainer* d2 = Shred("<a><b/><c/></a>");
  SizeDeltaLog t1, t2;
  t1.Add(0, 3);
  t1.Add(1, 1);
  t2.Add(0, 5);
  t2.Add(2, 2);
  t1.Apply(d1);
  t2.Apply(d1);
  t2.Apply(d2);
  t1.Apply(d2);
  for (int64_t rid = 0; rid < d1->PhysicalSlots(); ++rid)
    EXPECT_EQ(d1->SizeAtRid(rid), d2->SizeAtRid(rid));
}

TEST_F(UpdatesTest, PendingDeltaLogRecordsInsertFixups) {
  DocumentContainer* d = Shred("<a><b><c/></b></a>");
  UpdateEngine eng(d, 4, 50);
  StrId c_qn = mgr_.strings().Find("c");
  ASSERT_TRUE(
      eng.InsertXml(d->ElementsNamed(c_qn)[0], InsertPos::kLast, "<z/>").ok());
  // Ancestors a, b, c all grew: three logged deltas.
  EXPECT_EQ(eng.pending_deltas().deltas.size(), 4u);  // doc, a, b, c
  eng.Commit();
  EXPECT_TRUE(eng.pending_deltas().deltas.empty());
}

TEST_F(UpdatesTest, XQueryAddressedUpdates) {
  DocumentContainer* d =
      Shred("<inventory><item sku=\"a1\"><qty>5</qty></item>"
            "<item sku=\"b2\"><qty>0</qty></item>"
            "<item sku=\"c3\"><qty>9</qty></item></inventory>");
  UpdateEngine eng(d, 5, 70);
  xq::XQueryEngine engine(&mgr_);
  XQueryUpdater upd(&engine, &eng);

  // Insert a tag into every zero-stock item.
  auto n = upd.Insert("doc(\"" + d->name() +
                          "\")//item[qty = 0]",
                      InsertPos::kLast, "<restock/>");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1);
  EXPECT_EQ(Serialize(d),
            "<inventory><item sku=\"a1\"><qty>5</qty></item>"
            "<item sku=\"b2\"><qty>0</qty><restock/></item>"
            "<item sku=\"c3\"><qty>9</qty></item></inventory>");

  // Replace values addressed by attribute predicate.
  auto r = upd.ReplaceValue(
      "doc(\"" + d->name() + "\")//item[@sku = \"a1\"]/qty", "7");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, 1);
  auto rr = upd.ReplaceValue(
      "doc(\"" + d->name() + "\")//item[@sku = \"c3\"]/@sku", "c4");
  ASSERT_TRUE(rr.ok());

  // Delete all items with high stock (multiple targets, reverse order).
  auto del = upd.Delete("doc(\"" + d->name() + "\")//item[qty >= 7]");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(*del, 2);
  EXPECT_EQ(Serialize(d),
            "<inventory><item sku=\"b2\"><qty>0</qty><restock/>"
            "</item></inventory>");

  // Targets outside the updatable document are rejected.
  DocumentContainer* other = Shred("<x/>");
  EXPECT_FALSE(
      upd.Delete("doc(\"" + other->name() + "\")/x").ok());
  // Non-node targets are rejected.
  EXPECT_FALSE(upd.Delete("1 + 1").ok());
}

TEST_F(UpdatesTest, XQueryInsertMultipleTargetsReverseOrder) {
  DocumentContainer* d = Shred("<r><a/><a/><a/></r>");
  UpdateEngine eng(d, 4, 60);
  xq::XQueryEngine engine(&mgr_);
  XQueryUpdater upd(&engine, &eng);
  auto n = upd.Insert("doc(\"" + d->name() + "\")//a", InsertPos::kLast,
                      "<k/>");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 3);
  EXPECT_EQ(Serialize(d), "<r><a><k/></a><a><k/></a><a><k/></a></r>");
  CheckInvariants(*d);
}

// ---------------------------------------------------------------------------
// randomized differential test: updated-in-place == rebuilt-from-scratch
// ---------------------------------------------------------------------------

class RandomUpdatesTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RandomUpdatesTest, MatchesRebuiltDocument) {
  std::mt19937 rng(GetParam());
  DocumentManager mgr;
  auto shred = ShredDocument(
      &mgr, "u.xml", "<root><s1><k/></s1><s2/><s3><m/><n/></s3></root>");
  ASSERT_TRUE(shred.ok());
  DocumentContainer* d = *shred;
  UpdateEngine eng(d, /*page_bits=*/3, /*fill_pct=*/60);

  const char* frags[] = {"<u/>", "<v><w/></v>", "<p a=\"1\">t</p>",
                         "<q><r/><s>txt</s></q>",
                         "<deep><l1><l2><l3/></l2></l1></deep>"};
  for (int step = 0; step < 40; ++step) {
    // Pick a random real element (not the doc node).
    std::vector<int64_t> elems;
    for (int64_t p = 0; p < d->LogicalSlots(); ++p)
      if (!d->IsUnused(p) && d->KindAt(p) == NodeKind::kElem)
        elems.push_back(p);
    if (elems.empty()) break;
    int64_t target = elems[rng() % elems.size()];

    int op = rng() % 6;
    if (op == 5 && d->LevelAt(target) >= 1 && elems.size() > 2) {
      ASSERT_TRUE(eng.DeleteSubtree(target).ok());
    } else {
      InsertPos pos = static_cast<InsertPos>(rng() % 4);
      if ((pos == InsertPos::kBefore || pos == InsertPos::kAfter) &&
          d->LevelAt(target) <= 1)
        pos = InsertPos::kLast;  // keep the document single-rooted
      auto r = eng.InsertXml(target, pos, frags[rng() % 5]);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    CheckInvariants(*d);

    // Differential check: serialize, re-shred, serialize again.
    std::string now = Serialize(d);
    DocumentManager mgr2;
    auto reb = ShredDocument(&mgr2, "r.xml", now);
    ASSERT_TRUE(reb.ok()) << "updated doc must stay well-formed";
    std::string again = Serialize(*reb);
    ASSERT_EQ(now, again) << "seed=" << GetParam() << " step=" << step;

    // Staircase axes agree with the naive oracle on the updated document.
    if (step % 10 == 0) {
      std::vector<int64_t> ctx;
      for (size_t i = 0; i < elems.size(); i += 3)
        if (!d->IsUnused(elems[i])) ctx.push_back(elems[i]);
      std::sort(ctx.begin(), ctx.end());
      for (Axis axis : {Axis::kChild, Axis::kDescendant, Axis::kAncestor,
                        Axis::kFollowing}) {
        auto a = StaircaseJoin(*d, axis, ctx, NodeTest::AnyNode());
        auto b = EvalAxisNaive(*d, axis, ctx, NodeTest::AnyNode());
        ASSERT_EQ(a, b) << AxisName(axis) << " seed=" << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomUpdatesTest,
                         ::testing::Range(1u, 13u));

}  // namespace
}  // namespace updates
}  // namespace mxq
