// XMark integration tests: generator sanity + all 20 queries evaluated by
// the relational engine against the naive-interpreter oracle, across the
// optimizer configurations the paper's experiments toggle.

#include <gtest/gtest.h>

#include "baseline/interpreter.h"
#include "xmark/generator.h"
#include "xmark/queries.h"
#include "xml/serializer.h"
#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace {

class XMarkTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mgr_ = new DocumentManager();
    xmark::XMarkOptions opts;
    opts.scale = 0.002;  // ~250 KB: big enough to exercise every query shape
    std::string xml = xmark::GenerateXMark(opts);
    auto r = ShredDocument(mgr_, "auction.xml", xml);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    doc_ = *r;
  }
  static void TearDownTestSuite() {
    delete mgr_;
    mgr_ = nullptr;
  }

  static DocumentManager* mgr_;
  static DocumentContainer* doc_;
};

DocumentManager* XMarkTest::mgr_ = nullptr;
DocumentContainer* XMarkTest::doc_ = nullptr;

TEST_F(XMarkTest, GeneratorProducesExpectedEntities) {
  xq::XQueryEngine eng(mgr_);
  auto counts = xmark::XMarkCounts::ForScale(0.002);
  auto r = eng.Run("count(doc(\"auction.xml\")/site/people/person)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, std::to_string(counts.persons));
  r = eng.Run("count(doc(\"auction.xml\")/site/open_auctions/open_auction)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, std::to_string(counts.open_auctions));
  r = eng.Run("count(doc(\"auction.xml\")/site/regions//item)");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(std::stoll(*r), counts.items - 6);
}

TEST_F(XMarkTest, GeneratorCoversQuerySensitiveShapes) {
  xq::XQueryEngine eng(mgr_);
  // Q15/Q16 deep path exists.
  auto r = eng.Run(
      "count(doc(\"auction.xml\")/site/closed_auctions/closed_auction"
      "/annotation/description/parlist/listitem/parlist/listitem"
      "/text/emph/keyword)");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(std::stoll(*r), 0) << "Q15 path must be populated";
  // Q14 "gold" appears in descriptions.
  r = eng.Run(
      "count(for $i in doc(\"auction.xml\")/site//item "
      "where contains(string(exactly-one($i/description)), \"gold\") "
      "return $i)");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(std::stoll(*r), 0);
  // Q17: some people without homepage; Q20: some without income.
  r = eng.Run(
      "count(for $p in doc(\"auction.xml\")/site/people/person "
      "where empty($p/homepage/text()) return $p)");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(std::stoll(*r), 0);
  r = eng.Run(
      "count(for $p in doc(\"auction.xml\")/site/people/person "
      "where empty($p/profile/@income) return $p)");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(std::stoll(*r), 0);
}

// Each query parameterized: engine result == naive-oracle result, under
// every optimizer configuration.
class XMarkQueryDiff : public XMarkTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(XMarkQueryDiff, EngineMatchesNaiveOracle) {
  int qn = GetParam();
  const char* q = xmark::XMarkQuery(qn);

  baseline::NaiveInterpreter naive(mgr_);
  auto expect = naive.Run(q);
  ASSERT_TRUE(expect.ok()) << "naive Q" << qn << ": "
                           << expect.status().ToString();

  xq::XQueryEngine eng(mgr_);
  for (bool jr : {true, false}) {
    xq::CompileOptions co;
    co.join_recognition = jr;
    auto comp = eng.Compile(q, co);
    ASSERT_TRUE(comp.ok()) << "Q" << qn << ": " << comp.status().ToString();
    for (bool order : {true, false}) {
      for (xq::StepMode m :
           {xq::StepMode::kLoopLifted, xq::StepMode::kIterative}) {
        for (bool push : {false, true}) {
          xq::EvalOptions eo;
          eo.alg.order_opt = order;
          eo.child_mode = eo.desc_mode = m;
          eo.nametest_pushdown = push;
          auto res = eng.Execute(*comp, &eo);
          ASSERT_TRUE(res.ok())
              << "Q" << qn << ": " << res.status().ToString();
          EXPECT_EQ(res->Serialize(*mgr_), *expect)
              << "Q" << qn << " [jr=" << jr << " ord=" << order
              << " iter=" << (m == xq::StepMode::kIterative)
              << " push=" << push << "]";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, XMarkQueryDiff, ::testing::Range(1, 21),
                         [](const auto& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST_F(XMarkTest, AllClaimedPropertiesHoldAtRuntime) {
  // validate_props re-verifies every dense/key/const/ord/grpord claim on
  // every materialized intermediate — across all 20 real query plans.
  xq::XQueryEngine eng(mgr_);
  for (int qn = 1; qn <= 20; ++qn) {
    auto c = eng.Compile(xmark::XMarkQuery(qn));
    ASSERT_TRUE(c.ok()) << qn;
    xq::EvalOptions eo;
    eo.validate_props = true;
    auto r = eng.Execute(*c, &eo);
    EXPECT_TRUE(r.ok()) << "Q" << qn << ": " << r.status().ToString();
  }
}

TEST_F(XMarkTest, PlanStatsInThePaperBallpark) {
  // §4.1: "the generated query plans contain 86 relational algebra operators
  // on average, of which 9 are joins". Our factoring differs, but the order
  // of magnitude must match.
  xq::XQueryEngine eng(mgr_);
  int total_ops = 0, total_joins = 0;
  for (int qn = 1; qn <= 20; ++qn) {
    auto c = eng.Compile(xmark::XMarkQuery(qn));
    ASSERT_TRUE(c.ok()) << qn;
    total_ops += c->stats.num_ops;
    total_joins += c->stats.num_joins;
  }
  double avg_ops = total_ops / 20.0, avg_joins = total_joins / 20.0;
  EXPECT_GT(avg_ops, 30);
  EXPECT_LT(avg_ops, 300);
  EXPECT_GT(avg_joins, 3);
  EXPECT_LT(avg_joins, 40);
}

TEST_F(XMarkTest, ShredSerializeRoundTrip) {
  xmark::XMarkOptions opts;
  opts.scale = 0.001;
  opts.seed = 7;
  std::string xml = xmark::GenerateXMark(opts);
  DocumentManager mgr;
  auto r = ShredDocument(&mgr, "rt.xml", xml);
  ASSERT_TRUE(r.ok());
  std::string out;
  SerializeNode(**r, 0, &out);
  EXPECT_EQ(out, xml);
}

}  // namespace
}  // namespace mxq
