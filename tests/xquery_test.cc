// End-to-end XQuery engine tests: parse -> compile -> evaluate -> serialize.

#include <gtest/gtest.h>

#include "xml/shredder.h"
#include "xquery/engine.h"

namespace mxq {
namespace xq {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ShredDocument(&mgr_, "fig4.xml",
                              "<a><b><c><d/><e/></c></b>"
                              "<f><g/><h><i/><j/></h></f></a>")
                    .ok());
    ASSERT_TRUE(
        ShredDocument(
            &mgr_, "auction.xml",
            "<site><people>"
            "<person id=\"person0\"><name>Kasidit</name><age>25</age>"
            "<income>120000</income></person>"
            "<person id=\"person1\"><name>Amara</name><age>30</age>"
            "<income>40000</income></person>"
            "<person id=\"person2\"><name>Bola</name></person>"
            "</people><auctions>"
            "<auction><buyer person=\"person0\"/><price>10</price>"
            "<bidder><increase>3</increase></bidder>"
            "<bidder><increase>7</increase></bidder></auction>"
            "<auction><buyer person=\"person0\"/><price>25</price>"
            "<bidder><increase>11</increase></bidder></auction>"
            "<auction><buyer person=\"person2\"/><price>90</price></auction>"
            "</auctions></site>")
            .ok());
  }

  std::string Run(const std::string& q) {
    XQueryEngine eng(&mgr_);
    auto r = eng.Run(q);
    EXPECT_TRUE(r.ok()) << q << " -> " << r.status().ToString();
    return r.ok() ? *r : "<error: " + r.status().ToString() + ">";
  }

  /// Runs under a set of option combinations and checks they all agree.
  std::string RunAllModes(const std::string& q) {
    XQueryEngine eng(&mgr_);
    std::string base;
    for (bool jr : {true, false}) {
      CompileOptions co;
      co.join_recognition = jr;
      auto comp = eng.Compile(q, co);
      EXPECT_TRUE(comp.ok()) << q << " -> " << comp.status().ToString();
      if (!comp.ok()) return "<compile error>";
      for (bool order : {true, false}) {
        for (bool pos : {true, false}) {
          for (StepMode m : {StepMode::kLoopLifted, StepMode::kIterative}) {
            for (bool push : {false, true}) {
              EvalOptions eo;
              eo.alg.order_opt = order;
              eo.alg.positional = pos;
              eo.child_mode = eo.desc_mode = m;
              eo.nametest_pushdown = push;
              auto res = eng.Execute(*comp, &eo);
              EXPECT_TRUE(res.ok()) << q << " -> " << res.status().ToString();
              if (!res.ok()) return "<exec error>";
              std::string s = res->Serialize(mgr_);
              if (base.empty() && jr && order && pos &&
                  m == StepMode::kLoopLifted && !push) {
                base = s;
              } else {
                EXPECT_EQ(s, base)
                    << q << " [jr=" << jr << " ord=" << order
                    << " pos=" << pos << " iter=" << (m == StepMode::kIterative)
                    << " push=" << push << "]";
              }
            }
          }
        }
      }
    }
    return base;
  }

  DocumentManager mgr_;
};

// ---- literals, sequences, arithmetic ---------------------------------------

TEST_F(EngineTest, Literals) {
  EXPECT_EQ(Run("42"), "42");
  EXPECT_EQ(Run("3.5"), "3.5");
  EXPECT_EQ(Run("\"hello\""), "hello");
  EXPECT_EQ(Run("(1, 2, 3)"), "1 2 3");
  EXPECT_EQ(Run("()"), "");
  EXPECT_EQ(Run("(1, (2, 3), ())"), "1 2 3");
}

TEST_F(EngineTest, Arithmetic) {
  EXPECT_EQ(Run("1 + 2 * 3"), "7");
  EXPECT_EQ(Run("7 mod 2"), "1");
  EXPECT_EQ(Run("7 div 2"), "3.5");
  EXPECT_EQ(Run("8 div 2"), "4");
  EXPECT_EQ(Run("7 idiv 2"), "3");
  EXPECT_EQ(Run("-(3 + 4)"), "-7");
  EXPECT_EQ(Run("1 + ()"), "");
}

TEST_F(EngineTest, Comparisons) {
  EXPECT_EQ(Run("1 < 2"), "true");
  EXPECT_EQ(Run("2 eq 2"), "true");
  EXPECT_EQ(Run("\"abc\" = \"abc\""), "true");
  EXPECT_EQ(Run("(1, 5) = (5, 9)"), "true");   // existential
  EXPECT_EQ(Run("(1, 5) = (2, 9)"), "false");
  EXPECT_EQ(Run("() = 1"), "false");
  EXPECT_EQ(Run("(1, 2) < (0, 3)"), "true");
}

// ---- the paper's running example (§2.1, Figure 5) ---------------------------

TEST_F(EngineTest, Figure5Conditional) {
  EXPECT_EQ(RunAllModes("for $v in (3,4,5,6) return "
                        "if ($v mod 2 eq 0) then \"even\" else \"odd\""),
            "odd even odd even");
}

// ---- FLWOR ------------------------------------------------------------------

TEST_F(EngineTest, ForReturnsInBindingOrder) {
  EXPECT_EQ(Run("for $x in (10, 20, 30) return $x + 1"), "11 21 31");
}

TEST_F(EngineTest, NestedForIsCartesian) {
  EXPECT_EQ(RunAllModes("for $x in (1, 2) return for $y in (10, 20) "
                        "return $x * $y"),
            "10 20 20 40");
}

TEST_F(EngineTest, MultipleBindersInOneFor) {
  EXPECT_EQ(Run("for $x in (1, 2), $y in (3, 4) return $x * $y"),
            "3 4 6 8");
}

TEST_F(EngineTest, LetBindsSequences) {
  EXPECT_EQ(Run("for $x in (1, 2) let $s := ($x, $x * 10) return count($s)"),
            "2 2");
  EXPECT_EQ(Run("let $s := (4, 5, 6) return sum($s)"), "15");
}

TEST_F(EngineTest, WhereFilters) {
  EXPECT_EQ(RunAllModes("for $x in (1, 2, 3, 4, 5) where $x mod 2 eq 1 "
                        "return $x"),
            "1 3 5");
}

TEST_F(EngineTest, PositionalAtVar) {
  EXPECT_EQ(Run("for $x at $i in (\"a\", \"b\", \"c\") return $i"), "1 2 3");
}

TEST_F(EngineTest, OrderBy) {
  EXPECT_EQ(Run("for $x in (3, 1, 2) order by $x return $x"), "1 2 3");
  EXPECT_EQ(Run("for $x in (3, 1, 2) order by $x descending return $x"),
            "3 2 1");
  EXPECT_EQ(Run("for $p in doc(\"auction.xml\")//person "
                "order by zero-or-one($p/name/text()) "
                "return $p/name/text()"),
            "AmaraBolaKasidit");
}

TEST_F(EngineTest, IfWithoutElseBranchTaken) {
  EXPECT_EQ(Run("for $x in (1, 2) return if ($x eq 1) then \"one\" else ()"),
            "one");
}

// ---- paths -------------------------------------------------------------------

TEST_F(EngineTest, SimpleChildPath) {
  EXPECT_EQ(RunAllModes("doc(\"fig4.xml\")/a/b/c"), "<c><d/><e/></c>");
}

TEST_F(EngineTest, DescendantPath) {
  EXPECT_EQ(RunAllModes("doc(\"fig4.xml\")//h"), "<h><i/><j/></h>");
  EXPECT_EQ(Run("count(doc(\"fig4.xml\")//*)"), "10");
}

TEST_F(EngineTest, WildcardAndNodeTests) {
  EXPECT_EQ(Run("count(doc(\"fig4.xml\")/a/*)"), "2");
  EXPECT_EQ(Run("count(doc(\"auction.xml\")//name/text())"), "3");
}

TEST_F(EngineTest, AttributeAxis) {
  EXPECT_EQ(Run("for $p in doc(\"auction.xml\")//person return $p/@id"),
            "id=\"person0\"id=\"person1\"id=\"person2\"");
  EXPECT_EQ(Run("count(doc(\"auction.xml\")//person/@*)"), "3");
}

TEST_F(EngineTest, ReverseAxes) {
  EXPECT_EQ(Run("count(doc(\"fig4.xml\")//j/ancestor::*)"), "3");
  EXPECT_EQ(Run("for $d in doc(\"fig4.xml\")//d return count($d/..)"), "1");
}

TEST_F(EngineTest, SiblingAxes) {
  EXPECT_EQ(Run("doc(\"fig4.xml\")//b/following-sibling::*"),
            "<f><g/><h><i/><j/></h></f>");
  EXPECT_EQ(Run("doc(\"fig4.xml\")//h/preceding-sibling::*"), "<g/>");
  EXPECT_EQ(Run("count(doc(\"fig4.xml\")//j/preceding-sibling::i)"), "1");
}

TEST_F(EngineTest, KindTests) {
  DocumentManager local;
  ASSERT_TRUE(ShredDocument(&local, "k.xml",
                            "<r><!--note-->text<?pi data?><e/></r>")
                  .ok());
  xq::XQueryEngine eng(&local);
  auto r = eng.Run("count(doc(\"k.xml\")/r/node())");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "4");
  EXPECT_EQ(*eng.Run("count(doc(\"k.xml\")/r/comment())"), "1");
  EXPECT_EQ(*eng.Run("count(doc(\"k.xml\")/r/processing-instruction())"),
            "1");
  EXPECT_EQ(*eng.Run("doc(\"k.xml\")/r/text()"), "text");
}

TEST_F(EngineTest, ParentStepDotDot) {
  EXPECT_EQ(Run("doc(\"fig4.xml\")//d/../.."), 
            "<b><c><d/><e/></c></b>");
  EXPECT_EQ(Run("local-name(doc(\"fig4.xml\")//j/..)"), "h");
}

TEST_F(EngineTest, PathInsideForBody) {
  EXPECT_EQ(RunAllModes("for $p in doc(\"auction.xml\")//person "
                        "return count($p/name)"),
            "1 1 1");
}

TEST_F(EngineTest, DocOrderAndDedupAcrossSteps) {
  // Two overlapping context paths must produce each result node once, in
  // document order.
  EXPECT_EQ(Run("count(doc(\"fig4.xml\")//h/ancestor-or-self::*//i)"), "1");
}

// ---- predicates ----------------------------------------------------------------

TEST_F(EngineTest, PositionalPredicates) {
  EXPECT_EQ(RunAllModes("doc(\"auction.xml\")//auction[1]/price/text()"),
            "10");
  EXPECT_EQ(Run("doc(\"auction.xml\")//auction[last()]/price/text()"), "90");
  // text() yields text *nodes*: adjacent nodes serialize without the
  // atomic-value space separator.
  EXPECT_EQ(Run("for $a in doc(\"auction.xml\")//auction "
                "return $a/bidder[1]/increase/text()"),
            "311");
  EXPECT_EQ(Run("for $a in doc(\"auction.xml\")//auction "
                "return $a/bidder[last()]/increase/text()"),
            "711");
}

TEST_F(EngineTest, BooleanPredicates) {
  EXPECT_EQ(RunAllModes("doc(\"auction.xml\")//person[@id = \"person1\"]"
                        "/name/text()"),
            "Amara");
  EXPECT_EQ(Run("count(doc(\"auction.xml\")//person[income])"), "2");
  EXPECT_EQ(Run("count(doc(\"auction.xml\")//person[income > 50000])"), "1");
}

TEST_F(EngineTest, PositionFunctionInPredicate) {
  EXPECT_EQ(Run("doc(\"fig4.xml\")/a/b/c/*[position() eq 2]"), "<e/>");
}

TEST_F(EngineTest, StackedPredicatesRenumber) {
  EXPECT_EQ(Run("(10, 20, 30, 40)[. > 15][2]"), "30");
}

// ---- functions -----------------------------------------------------------------

TEST_F(EngineTest, Aggregates) {
  EXPECT_EQ(Run("count(doc(\"auction.xml\")//person)"), "3");
  EXPECT_EQ(Run("sum((1, 2, 3))"), "6");
  EXPECT_EQ(Run("min((4, 2, 9))"), "2");
  EXPECT_EQ(Run("max((4, 2, 9))"), "9");
  EXPECT_EQ(Run("avg((2, 4))"), "3");
  EXPECT_EQ(Run("sum(())"), "0");
  EXPECT_EQ(Run("count(())"), "0");
  EXPECT_EQ(Run("for $a in doc(\"auction.xml\")//auction "
                "return count($a/bidder)"),
            "2 1 0");
}

TEST_F(EngineTest, BooleanFunctions) {
  EXPECT_EQ(Run("not(1 eq 2)"), "true");
  EXPECT_EQ(Run("empty(())"), "true");
  EXPECT_EQ(Run("empty((1))"), "false");
  EXPECT_EQ(Run("exists(doc(\"fig4.xml\")//h)"), "true");
  EXPECT_EQ(Run("for $p in doc(\"auction.xml\")//person "
                "return empty($p/income/text())"),
            "false false true");
}

TEST_F(EngineTest, StringFunctions) {
  EXPECT_EQ(Run("contains(\"staircase\", \"stair\")"), "true");
  EXPECT_EQ(Run("contains(\"staircase\", \"xyz\")"), "false");
  EXPECT_EQ(Run("starts-with(\"person0\", \"person\")"), "true");
  EXPECT_EQ(Run("string-length(\"abc\")"), "3");
  EXPECT_EQ(Run("concat(\"a\", \"b\", \"c\")"), "abc");
  EXPECT_EQ(Run("string(doc(\"auction.xml\")//person[1]/name)"), "Kasidit");
  EXPECT_EQ(Run("string-join((\"a\", \"b\"), \"-\")"), "a-b");
}

TEST_F(EngineTest, NumericFunctions) {
  EXPECT_EQ(Run("floor(3.7)"), "3");
  EXPECT_EQ(Run("ceiling(3.2)"), "4");
  EXPECT_EQ(Run("round(3.5)"), "4");
  EXPECT_EQ(Run("abs(-3)"), "3");
  EXPECT_EQ(Run("number(\"12.5\") * 2"), "25");
}

TEST_F(EngineTest, DistinctValues) {
  EXPECT_EQ(Run("count(distinct-values((1, 2, 1, 3, 2)))"), "3");
  EXPECT_EQ(Run("count(distinct-values("
                "doc(\"auction.xml\")//buyer/@person))"),
            "2");
}

TEST_F(EngineTest, DataAndAtomization) {
  EXPECT_EQ(Run("data(doc(\"auction.xml\")//person[1]/age)"), "25");
  EXPECT_EQ(Run("doc(\"auction.xml\")//person[1]/age + 5"), "30");
}

TEST_F(EngineTest, NameFunctions) {
  EXPECT_EQ(Run("local-name(doc(\"fig4.xml\")/a/b)"), "b");
  EXPECT_EQ(Run("name(doc(\"fig4.xml\")//h)"), "h");
}

// ---- quantifiers ----------------------------------------------------------------

TEST_F(EngineTest, Quantifiers) {
  EXPECT_EQ(Run("some $x in (1, 2, 3) satisfies $x eq 2"), "true");
  EXPECT_EQ(Run("some $x in (1, 2, 3) satisfies $x eq 9"), "false");
  EXPECT_EQ(Run("every $x in (2, 4, 6) satisfies $x mod 2 eq 0"), "true");
  EXPECT_EQ(Run("every $x in (2, 3) satisfies $x mod 2 eq 0"), "false");
  EXPECT_EQ(Run("some $x in () satisfies $x eq 1"), "false");
  EXPECT_EQ(Run("every $x in () satisfies $x eq 1"), "true");
  EXPECT_EQ(RunAllModes(
                "for $a in doc(\"auction.xml\")//auction "
                "where some $b in $a/bidder satisfies $b/increase > 5 "
                "return $a/price/text()"),
            "1025");
}

TEST_F(EngineTest, NodeOrderComparison) {
  EXPECT_EQ(Run("let $d := doc(\"fig4.xml\") return "
                "(exactly-one($d//b) << exactly-one($d//h))"),
            "true");
  EXPECT_EQ(Run("let $d := doc(\"fig4.xml\") return "
                "(exactly-one($d//h) << exactly-one($d//b))"),
            "false");
  EXPECT_EQ(Run("let $d := doc(\"fig4.xml\") return "
                "(exactly-one($d//h) is exactly-one($d//h))"),
            "true");
}

// ---- constructors -----------------------------------------------------------------

TEST_F(EngineTest, DirectConstructors) {
  EXPECT_EQ(Run("<x/>"), "<x/>");
  EXPECT_EQ(Run("<x a=\"1\">text</x>"), "<x a=\"1\">text</x>");
  EXPECT_EQ(Run("<out>{1 + 1}</out>"), "<out>2</out>");
  EXPECT_EQ(Run("<r>{(1, 2, 3)}</r>"), "<r>1 2 3</r>");
  EXPECT_EQ(Run("<w><inner>{\"v\"}</inner></w>"), "<w><inner>v</inner></w>");
}

TEST_F(EngineTest, ConstructorCopiesNodes) {
  EXPECT_EQ(Run("<wrap>{doc(\"fig4.xml\")/a/b/c}</wrap>"),
            "<wrap><c><d/><e/></c></wrap>");
}

TEST_F(EngineTest, AttributeValueTemplates) {
  EXPECT_EQ(Run("for $p in doc(\"auction.xml\")//person "
                "return <item name=\"{$p/name/text()}\"/>"),
            "<item name=\"Kasidit\"/><item name=\"Amara\"/>"
            "<item name=\"Bola\"/>");
  EXPECT_EQ(Run("<t v=\"a{1+1}b\"/>"), "<t v=\"a2b\"/>");
}

TEST_F(EngineTest, ConstructorPerIteration) {
  EXPECT_EQ(RunAllModes("for $x in (1, 2) return <n v=\"{$x}\"/>"),
            "<n v=\"1\"/><n v=\"2\"/>");
}

// ---- join queries (the Q8-Q12 pattern) ----------------------------------------

TEST_F(EngineTest, ValueJoinRecognized) {
  const char* q =
      "for $p in doc(\"auction.xml\")//person "
      "let $a := for $t in doc(\"auction.xml\")//auction "
      "          where $t/buyer/@person = $p/@id return $t "
      "return <item person=\"{$p/name/text()}\">{count($a)}</item>";
  EXPECT_EQ(RunAllModes(q),
            "<item person=\"Kasidit\">2</item>"
            "<item person=\"Amara\">0</item>"
            "<item person=\"Bola\">1</item>");

  // The recognized plan must contain an existential join; the naive plan a
  // cross-style loop-lift.
  XQueryEngine eng(&mgr_);
  CompileOptions on, off;
  off.join_recognition = false;
  auto pj = eng.Compile(q, on);
  auto pc = eng.Compile(q, off);
  ASSERT_TRUE(pj.ok() && pc.ok());
  bool has_exist = false;
  std::function<void(const PlanPtr&)> walk = [&](const PlanPtr& n) {
    if (!n) return;
    if (n->op == OpCode::kExistJoin) has_exist = true;
    for (const PlanPtr& c : n->inputs) walk(c);
  };
  walk(pj->root);
  EXPECT_TRUE(has_exist);
  has_exist = false;
  walk(pc->root);
  EXPECT_FALSE(has_exist);
}

TEST_F(EngineTest, ThetaJoinRecognized) {
  // The Q11/Q12 pattern: > comparison between independent sides.
  const char* q =
      "for $p in doc(\"auction.xml\")//person "
      "let $l := for $i in doc(\"auction.xml\")//price "
      "          where $p/income > 1000 * exactly-one($i/text()) return $i "
      "return <r>{count($l)}</r>";
  EXPECT_EQ(RunAllModes(q), "<r>3</r><r>2</r><r>0</r>");
}

// ---- user-defined functions ------------------------------------------------------

TEST_F(EngineTest, UserDefinedFunction) {
  EXPECT_EQ(Run("declare function local:convert($v) { 2.5 * $v }; "
                "for $i in (2, 4) return local:convert($i)"),
            "5 10");
}

TEST_F(EngineTest, FunctionWithTwoParams) {
  EXPECT_EQ(Run("declare function local:add($a, $b) { $a + $b }; "
                "local:add(3, 4)"),
            "7");
}

TEST_F(EngineTest, RecursionDepthBounded) {
  XQueryEngine eng(&mgr_);
  auto r = eng.Compile(
      "declare function local:f($x) { local:f($x) }; local:f(1)");
  EXPECT_FALSE(r.ok());
}

// ---- plan statistics ---------------------------------------------------------------

TEST_F(EngineTest, PlanStatsCountOpsAndJoins) {
  XQueryEngine eng(&mgr_);
  auto q = eng.Compile(
      "for $p in doc(\"auction.xml\")//person where $p/age > 20 "
      "return $p/name");
  ASSERT_TRUE(q.ok());
  EXPECT_GT(q->stats.num_ops, 10);
  EXPECT_GT(q->stats.num_joins, 0);
  EXPECT_GT(q->stats.num_steps, 2);
}

// ---- errors --------------------------------------------------------------------------

TEST_F(EngineTest, ErrorsSurface) {
  XQueryEngine eng(&mgr_);
  EXPECT_FALSE(eng.Run("for $x in").ok());             // parse error
  EXPECT_FALSE(eng.Run("$undefined").ok());            // unbound var
  EXPECT_FALSE(eng.Run("unknown-fn(1)").ok());         // unknown function
  EXPECT_FALSE(eng.Run("doc(\"missing.xml\")/a").ok()); // unknown doc
}

TEST_F(EngineTest, ContextDocOption) {
  XQueryEngine eng(&mgr_);
  CompileOptions co;
  co.context_doc = "fig4.xml";
  auto r = eng.Run("count(/a/b/c/*)", co);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r, "2");
  auto rr = eng.Run("count(//h/descendant::*)", co);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(*rr, "2");
}

}  // namespace
}  // namespace xq
}  // namespace mxq
