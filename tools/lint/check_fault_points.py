#!/usr/bin/env python3
"""Repo invariant: the fault-point registry is consistent everywhere.

A named fault point exists in three places that must agree
(docs/static_analysis.md):

  1. the MXQ_FAULT_POINT("...") sites in src/,
  2. the chaos sweep's kAllPoints[] table (tests/chaos_test.cc), which
     arms every point against every kernel, and
  3. the point list in docs/robustness.md.

A point added to src/ but not to kAllPoints[] is never chaos-tested; a
point removed from src/ but left in the table makes the sweep arm a name
nothing hits (silently vacuous). Both directions are checked, plus doc
mentions, plus a guard against dotted point-like names documented in the
fault-injection section that no longer exist in src/.

Usage: check_fault_points.py <repo-root>   (exit 0 = consistent)
"""

import pathlib
import re
import sys


def fail(msg: str) -> None:
    print(f"check_fault_points: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")

    src_points = set()
    for f in (root / "src").rglob("*.cc"):
        src_points |= set(re.findall(r'MXQ_FAULT_POINT\("([^"]+)"\)', f.read_text()))
    for f in (root / "src").rglob("*.h"):
        if f.name == "fault.h":  # the macro definition itself
            continue
        src_points |= set(re.findall(r'MXQ_FAULT_POINT\("([^"]+)"\)', f.read_text()))
    if not src_points:
        fail("no MXQ_FAULT_POINT sites found under src/ (wrong root?)")

    chaos = (root / "tests" / "chaos_test.cc").read_text()
    m = re.search(r"kAllPoints\[\]\s*=\s*\{(.*?)\}", chaos, re.DOTALL)
    if not m:
        fail("kAllPoints[] table not found in tests/chaos_test.cc")
    chaos_points = set(re.findall(r'"([^"]+)"', m.group(1)))

    missing_in_chaos = src_points - chaos_points
    if missing_in_chaos:
        fail(
            f"fault points in src/ but not in chaos kAllPoints[] "
            f"(never chaos-swept): {sorted(missing_in_chaos)}"
        )
    stale_in_chaos = chaos_points - src_points
    if stale_in_chaos:
        fail(
            f"chaos kAllPoints[] arms names with no MXQ_FAULT_POINT site "
            f"(vacuous sweep entries): {sorted(stale_in_chaos)}"
        )

    docs = (root / "docs" / "robustness.md").read_text()
    undocumented = {p for p in src_points if f"`{p}`" not in docs}
    if undocumented:
        fail(f"fault points not documented in docs/robustness.md: {sorted(undocumented)}")

    # Dotted point-like names in the fault-injection section must be real.
    sect = re.search(r"## Fault injection(.*?)(\n## |\Z)", docs, re.DOTALL)
    if sect:
        doc_dotted = set(re.findall(r"`([a-z]+\.[a-z]+)`", sect.group(1)))
        ghosts = doc_dotted - src_points
        if ghosts:
            fail(f"docs/robustness.md documents nonexistent fault points: {sorted(ghosts)}")

    print(f"check_fault_points: OK ({len(src_points)} points consistent)")


if __name__ == "__main__":
    main()
