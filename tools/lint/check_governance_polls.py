#!/usr/bin/env python3
"""Repo invariant: every governed kernel keeps a cancellation checkpoint.

Resource governance (docs/robustness.md) bounds cancel/deadline latency to
"one morsel" only because every row-looping kernel polls its ExecContext.
An edit that drops the last checkpoint from a kernel file silently turns a
bounded-latency guarantee into an unbounded one — nothing fails until a
production query refuses to die. This check pins the invariant:

  * every file in the kernel registry below contains at least one
    checkpoint idiom, and
  * any src/ file that places an MXQ_FAULT_POINT also polls — a fault
    point marks a kernel boundary, and kernel boundaries are exactly
    where governance must be observable.

Checkpoint idioms (the complete set used by the codebase):
  StopRequested( / stop_requested( / CancelTick( / BuildStopRequested( /
  gov->Check(

Usage: check_governance_polls.py <repo-root>   (exit 0 = consistent)
"""

import pathlib
import re
import sys

# Row-loop kernel translation units. Extend this list when a new governed
# kernel lands; the fault-point rule below catches the common case
# automatically (new kernels get fault points for the chaos sweep).
#
# The two pipeline files pin the docs/execution.md §6 contract that every
# pipeline stage's pull loop is a cancellation checkpoint: an abandoned or
# cancelled streaming consumer must stop the producer within one vector.
KERNEL_FILES = [
    "src/algebra/ops.cc",
    "src/algebra/pipeline.cc",
    "src/algebra/radix.h",
    "src/staircase/loop_lifted.cc",
    "src/fulltext/index.cc",
    "src/fulltext/text_probe.cc",
    "src/xquery/eval.cc",
    "src/xquery/stream.cc",
    "src/xml/shredder.cc",
]

CHECKPOINT = re.compile(
    r"StopRequested\s*\(|stop_requested\s*\(|CancelTick\s*\(|"
    r"BuildStopRequested\s*\(|gov->Check\s*\("
)


def fail(msg: str) -> None:
    print(f"check_governance_polls: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")

    for rel in KERNEL_FILES:
        f = root / rel
        if not f.exists():
            fail(f"kernel registry lists missing file {rel} (update the list)")
        if not CHECKPOINT.search(f.read_text()):
            fail(f"{rel}: governed kernel has no cancellation checkpoint")

    unpolled = []
    for f in sorted((root / "src").rglob("*.cc")) + sorted((root / "src").rglob("*.h")):
        text = f.read_text()
        if f.name in ("fault.h", "fault.cc"):
            continue
        if 'MXQ_FAULT_POINT("' in text and not CHECKPOINT.search(text):
            unpolled.append(str(f.relative_to(root)))
    if unpolled:
        fail(f"files with fault points but no governance checkpoint: {unpolled}")

    print(f"check_governance_polls: OK ({len(KERNEL_FILES)} kernels polled)")


if __name__ == "__main__":
    main()
