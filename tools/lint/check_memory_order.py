#!/usr/bin/env python3
"""Repo invariant: publication-pattern atomics never use default ordering.

The lock-free read paths (StringPool::Get, ItemDict::EntryOf, fulltext
PostingAt, the DocumentManager container registry) rest on an explicit
release/acquire protocol documented by `// publication:` comments next to
each atomic field (docs/static_analysis.md). A bare `.load()` / `.store(x)`
defaults to seq_cst — which is *correct* but hides the protocol: the next
editor can no longer tell a deliberate acquire from an accidental default,
and the annotations rot. This check enforces the house style mechanically:

  In any src/ file that contains a `// publication:` comment, every atomic
  operation (`load`, `store`, `fetch_add`, `fetch_sub`, `exchange`,
  `compare_exchange_*`) must name a std::memory_order explicitly.

Usage: check_memory_order.py <repo-root>   (exit 0 = consistent)
"""

import pathlib
import re
import sys

ATOMIC_OP = re.compile(
    r"\.(load|store|fetch_add|fetch_sub|exchange|compare_exchange_weak|"
    r"compare_exchange_strong)\s*\("
)


def fail(msg: str) -> None:
    print(f"check_memory_order: {msg}", file=sys.stderr)
    sys.exit(1)


def call_args(text: str, open_paren: int) -> str:
    """Returns the argument text of the call whose '(' is at open_paren."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1 : i]
    return text[open_paren + 1 :]  # unbalanced: caller reports it all


def main() -> None:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")

    violations = []
    checked = 0
    for f in sorted((root / "src").rglob("*.cc")) + sorted((root / "src").rglob("*.h")):
        text = f.read_text()
        if "// publication:" not in text:
            continue
        checked += 1
        for m in ATOMIC_OP.finditer(text):
            args = call_args(text, m.end() - 1)
            if "memory_order" not in args:
                line = text.count("\n", 0, m.start()) + 1
                violations.append(
                    f"{f.relative_to(root)}:{line}: .{m.group(1)}() without an "
                    f"explicit std::memory_order"
                )
    if checked == 0:
        fail("no files with '// publication:' comments found (wrong root?)")
    if violations:
        fail("implicit seq_cst in publication-pattern files:\n  " + "\n  ".join(violations))

    print(f"check_memory_order: OK ({checked} publication-pattern files)")


if __name__ == "__main__":
    main()
