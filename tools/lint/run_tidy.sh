#!/usr/bin/env bash
# clang-tidy over the whole library against the checked-in .clang-tidy
# baseline (docs/static_analysis.md).
#
# Usage: tools/lint/run_tidy.sh [build-dir]
#
# The build dir must hold a compile_commands.json (every configure exports
# one — CMAKE_EXPORT_COMPILE_COMMANDS is ON in the top-level CMakeLists).
# Exits 0 with a notice when clang-tidy is not installed: the container
# toolchain is GCC-only, so the tidy leg is advisory there and binding on
# hosts that have Clang.
set -euo pipefail

cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_tidy: clang-tidy not found on PATH; skipping (advisory leg)."
  exit 0
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_tidy: ${BUILD_DIR}/compile_commands.json missing." >&2
  echo "run_tidy: configure first: cmake -B ${BUILD_DIR} -S ." >&2
  exit 1
fi

# run-clang-tidy parallelizes when available; otherwise iterate.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -p "${BUILD_DIR}" -quiet "src/.*\.cc$"
else
  status=0
  while IFS= read -r f; do
    echo "== clang-tidy ${f}"
    clang-tidy -p "${BUILD_DIR}" --quiet "${f}" || status=1
  done < <(find src -name '*.cc' | sort)
  exit "${status}"
fi
